package main

import (
	"path/filepath"
	"testing"
)

func TestRunExampleShort(t *testing.T) {
	if err := run([]string{"-example", "-duration", "300ms"}); err != nil {
		t.Fatalf("-example failed: %v", err)
	}
}

func TestRunRandomised(t *testing.T) {
	if err := run([]string{"-example", "-duration", "300ms", "-adversarial=false", "-seed", "3"}); err != nil {
		t.Fatalf("randomised run failed: %v", err)
	}
}

func TestRunScenarioFile(t *testing.T) {
	path := filepath.Join("..", "..", "scenarios", "voip-edge.json")
	if err := run([]string{"-duration", "200ms", path}); err != nil {
		t.Fatalf("scenario run failed: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-duration", "soon", "-example"},
		{"/nonexistent.json"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
