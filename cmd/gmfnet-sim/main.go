// Command gmfnet-sim simulates a JSON scenario on the discrete-event model
// of the paper's data path and compares the observed worst-case response
// times against the analytic bounds.
//
// Usage:
//
//	gmfnet-sim [-duration 3s] [-seed 0] [-adversarial] [-example] [scenario.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"gmfnet/internal/config"
	"gmfnet/internal/core"
	"gmfnet/internal/report"
	"gmfnet/internal/sim"
	"gmfnet/internal/units"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gmfnet-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gmfnet-sim", flag.ContinueOnError)
	durStr := fs.String("duration", "3s", "simulated time span, e.g. 500ms, 10s")
	seed := fs.Int64("seed", 0, "PRNG seed for randomised runs")
	adversarial := fs.Bool("adversarial", true, "release at minimum separations with synchronised starts and back-loaded jitter")
	example := fs.Bool("example", false, "simulate the built-in Figure 1 scenario")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var scenario *config.Scenario
	switch {
	case *example:
		scenario = config.Figure1Scenario()
	case fs.NArg() == 1:
		var err error
		scenario, err = config.Load(fs.Arg(0))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need a scenario file or -example (see -h)")
	}
	nw, err := scenario.Build()
	if err != nil {
		return err
	}

	dur, err := units.ParseTime(*durStr)
	if err != nil {
		return err
	}
	simCfg := sim.Config{Duration: dur, Seed: *seed}
	if !*adversarial {
		simCfg.Jitter = sim.JitterUniform
		simCfg.Phase = sim.PhaseRandom
		simCfg.SeparationSlack = 0.25
	}

	an, err := core.NewAnalyzer(nw, core.Config{})
	if err != nil {
		return err
	}
	bounds, err := an.Analyze()
	if err != nil {
		return err
	}

	s, err := sim.New(nw, simCfg)
	if err != nil {
		return err
	}
	obs, err := s.Run()
	if err != nil {
		return err
	}

	t := report.NewTable(
		fmt.Sprintf("Simulated %v (%d events); analysis converged=%v",
			obs.EndTime, obs.Events, bounds.Converged),
		"flow", "frame", "completed", "mean", "observed max", "bound", "violation")
	violations := 0
	for i := range obs.Flows {
		for k := range obs.Flows[i].PerFrame {
			st := obs.Flows[i].PerFrame[k]
			var bound units.Time
			// The simulator's flow list and the analysis result are built
			// from the same scenario, but cross-indexing two containers
			// stays bounds-checked: a malformed pairing degrades to "no
			// bound" instead of an index panic.
			if fr, err := bounds.FlowByIndex(i); err == nil && fr.Err == nil && k < len(fr.Frames) {
				bound = fr.Frames[k].Response
			}
			viol := bound > 0 && st.MaxResponse > bound
			if viol {
				violations++
			}
			t.AddRowf(obs.Flows[i].Name, k, st.Completed, st.MeanResponse(), st.MaxResponse, bound, viol)
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if violations > 0 {
		return fmt.Errorf("%d bound violations observed", violations)
	}
	return nil
}
