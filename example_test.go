package gmfnet_test

import (
	"fmt"

	"gmfnet"
)

// ExampleSystem_Analyze bounds the Figure 3 MPEG flow on the Figure 1
// network at 10 Mbit/s — the paper's worked example.
func ExampleSystem_Analyze() {
	sys := gmfnet.NewSystem(gmfnet.MustFigure1(gmfnet.Figure1Options{Rate: 10 * gmfnet.Mbps}))
	sys.MustAddFlow(&gmfnet.FlowSpec{
		Flow:     gmfnet.MPEGIBBPBBPBB("video", gmfnet.MPEGOptions{Deadline: 300 * gmfnet.Millisecond}),
		Route:    []gmfnet.NodeID{"0", "4", "6", "3"},
		Priority: 2,
	})
	res, err := sys.Analyze(gmfnet.AnalysisConfig{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("schedulable:", res.Schedulable())
	fmt.Println("I+P bound:", res.Flow(0).Frames[0].Response)
	// Output:
	// schedulable: true
	// I+P bound: 49.163ms
}

// ExampleSystem_UtilizationReport prints the bottleneck resource of a
// two-flow network.
func ExampleSystem_UtilizationReport() {
	sys := gmfnet.NewSystem(gmfnet.MustFigure1(gmfnet.Figure1Options{Rate: 10 * gmfnet.Mbps}))
	for _, src := range []gmfnet.NodeID{"0", "1"} {
		sys.MustAddFlow(&gmfnet.FlowSpec{
			Flow:     gmfnet.CBRVideo("cam-"+string(src), 5000, 20*gmfnet.Millisecond, 100*gmfnet.Millisecond),
			Route:    []gmfnet.NodeID{src, "4", "6", "3"},
			Priority: 1,
		})
	}
	loads, err := sys.UtilizationReport()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("bottleneck: %v (%.4f)\n", loads[0].Resource, loads[0].Utilization)
	// Output:
	// bottleneck: link(4,6) (0.4192)
}

// ExampleSystem_FindBreakdown estimates how much a workload can grow
// before the admission test starts rejecting.
func ExampleSystem_FindBreakdown() {
	sys := gmfnet.NewSystem(gmfnet.MustFigure1(gmfnet.Figure1Options{Rate: 10 * gmfnet.Mbps}))
	sys.MustAddFlow(&gmfnet.FlowSpec{
		Flow:     gmfnet.VoIP("call", gmfnet.VoIPOptions{Deadline: 100 * gmfnet.Millisecond}),
		Route:    []gmfnet.NodeID{"0", "4", "6", "3"},
		Priority: 3,
	})
	bd, err := sys.FindBreakdown(gmfnet.BreakdownOptions{MaxScale: 16})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("has headroom:", bd.Scale > 1)
	// Output:
	// has headroom: true
}
