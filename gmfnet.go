// Package gmfnet is a schedulability-analysis toolkit for generalized
// multiframe (GMF) traffic on multihop networks of software-implemented
// Ethernet switches, reproducing:
//
//	Björn Andersson. "Schedulability Analysis of Generalized Multiframe
//	Traffic on Multihop-Networks Comprising Software-Implemented
//	Ethernet-Switches." IPPS/IPDPS 2008.
//
// The package is a thin facade over the implementation packages:
//
//   - internal/gmf — the GMF traffic model and request-bound functions;
//   - internal/ether — UDP→Ethernet packetisation (eq. 1);
//   - internal/network — topology, routes, priorities, CIRC(N);
//   - internal/core — the response-time analysis and holistic fixpoint;
//   - internal/sim — a discrete-event simulator of the whole data path;
//   - internal/sporadic — the sporadic-collapse baseline;
//   - internal/admission — the admission controllers of Section 3.5
//     (incremental, closure-sharded, multi-core scheduled, and the cold
//     reference baseline);
//   - internal/trace — MPEG/VoIP/CBR/random workload generators.
//
// The layer map and the engine-state invariants are documented in
// docs/ARCHITECTURE.md; the scenario JSON and request-trace formats in
// docs/SCENARIOS.md.
//
// A minimal session:
//
//	topo := gmfnet.MustFigure1(gmfnet.Figure1Options{})
//	sys := gmfnet.NewSystem(topo)
//	sys.MustAddFlow(&gmfnet.FlowSpec{
//		Flow:     gmfnet.MPEGIBBPBBPBB("video", gmfnet.MPEGOptions{}),
//		Route:    []gmfnet.NodeID{"0", "4", "6", "3"},
//		Priority: 2,
//	})
//	res, err := sys.Analyze(gmfnet.AnalysisConfig{})
//	// res.Schedulable(), res.Flow(0).Frames[k].Response, ...
package gmfnet

import (
	"gmfnet/internal/admission"
	"gmfnet/internal/core"
	"gmfnet/internal/gmf"
	"gmfnet/internal/network"
	"gmfnet/internal/prio"
	"gmfnet/internal/sensitivity"
	"gmfnet/internal/sim"
	"gmfnet/internal/sporadic"
	"gmfnet/internal/trace"
	"gmfnet/internal/units"
)

// Re-exported model types. See the originating packages for full
// documentation.
type (
	// Time is a duration in picoseconds.
	Time = units.Time
	// BitRate is a link speed in bits per second.
	BitRate = units.BitRate
	// Flow is a generalized multiframe flow.
	Flow = gmf.Flow
	// Frame is one frame of a GMF flow.
	Frame = gmf.Frame
	// NodeID names a topology node.
	NodeID = network.NodeID
	// Topology is the node/link graph.
	Topology = network.Topology
	// SwitchParams holds software-switch costs.
	SwitchParams = network.SwitchParams
	// FlowSpec binds a flow to a route and priority.
	FlowSpec = network.FlowSpec
	// Priority is an 802.1p priority (larger = more important).
	Priority = network.Priority
	// Figure1Options configures the paper's example network.
	Figure1Options = network.Figure1Options
	// AnalysisConfig tunes the response-time analysis.
	AnalysisConfig = core.Config
	// ConvergenceStats breaks down how the holistic fixpoint of one
	// analysis was reached: plain sweeps, total worklist rounds,
	// accepted Anderson jumps and safeguard rollbacks (AnalysisConfig
	// Accel).
	ConvergenceStats = core.ConvergenceStats
	// ErrNoConvergence records an analysis abandoned at the holistic
	// iteration cap (AnalysisConfig.MaxHolisticIter) — found on
	// AnalysisResult.NoConvergence, never returned as an error.
	ErrNoConvergence = core.ErrNoConvergence
	// AnalysisResult is the holistic analysis outcome, detached from the
	// engine that produced it.
	AnalysisResult = core.Result
	// AnalysisView is an immutable copy-on-read view of one analysis
	// outcome: Engine.AnalyzeView returns it in O(1) by sharing the
	// engine's live per-flow results, and the engine preserves retained
	// views as it moves on. Materialize converts it into a detached
	// AnalysisResult; Close discards it.
	AnalysisView = core.ResultView
	// SimConfig tunes the discrete-event simulator.
	SimConfig = sim.Config
	// SimResult is the simulation outcome.
	SimResult = sim.Result
	// MPEGOptions configures the Figure 3 MPEG workload.
	MPEGOptions = trace.MPEGOptions
	// VoIPOptions configures the VoIP workload.
	VoIPOptions = trace.VoIPOptions
	// AdmissionDecision records one admission request outcome.
	AdmissionDecision = admission.Decision
	// AdmissionController admits flows against a network incrementally.
	AdmissionController = admission.Controller
	// ShardedAdmissionController admits flows per interference closure,
	// with concurrent shard analyses and identical decisions.
	ShardedAdmissionController = admission.ShardedController
	// ParallelAdmissionController runs the closure-sharded admission test
	// on a worker pool: one serial mailbox goroutine per shard, distinct
	// closures concurrent, batches pipelined, decisions identical.
	ParallelAdmissionController = admission.ParallelController
	// PendingAdmissionBatch is an in-flight pipelined batch submitted to
	// a ParallelAdmissionController; Wait returns its decisions.
	PendingAdmissionBatch = admission.PendingBatch
	// Engine is the persistent, warm-startable analysis engine behind
	// incremental admission control.
	Engine = core.Engine
	// ShardedEngine partitions the analysis state by interference
	// closure, one warm engine per closure.
	ShardedEngine = core.ShardedEngine
	// ModelComparison pairs GMF and sporadic verdicts.
	ModelComparison = sporadic.Comparison
)

// Common duration and rate units.
const (
	Nanosecond  = units.Nanosecond
	Microsecond = units.Microsecond
	Millisecond = units.Millisecond
	Second      = units.Second
	Kbps        = units.Kbps
	Mbps        = units.Mbps
	Gbps        = units.Gbps
)

// Analysis modes (DESIGN.md F3-F5).
const (
	// ModeSound is the reconstruction whose bounds the simulator never
	// violates (default).
	ModeSound = core.ModeSound
	// ModePaper follows the equations exactly as printed.
	ModePaper = core.ModePaper
)

// NewTopology returns an empty topology.
func NewTopology() *Topology { return network.NewTopology() }

// DefaultSwitchParams returns the paper's Click measurements (CROUTE =
// 2.7 µs, CSEND = 1.0 µs, one processor).
func DefaultSwitchParams() SwitchParams { return network.DefaultSwitchParams() }

// Figure1 builds the paper's example network (Figure 1).
func Figure1(opt Figure1Options) (*Topology, error) { return network.Figure1(opt) }

// MustFigure1 is Figure1 that panics on error.
func MustFigure1(opt Figure1Options) *Topology { return network.MustFigure1(opt) }

// MPEGIBBPBBPBB builds the Figure 3 MPEG flow.
func MPEGIBBPBBPBB(name string, opt MPEGOptions) *Flow { return trace.MPEGIBBPBBPBB(name, opt) }

// VoIP builds a single-frame VoIP flow.
func VoIP(name string, opt VoIPOptions) *Flow { return trace.VoIP(name, opt) }

// CBRVideo builds a constant-bit-rate video flow.
func CBRVideo(name string, frameBytes int64, period, deadline Time) *Flow {
	return trace.CBRVideo(name, frameBytes, period, deadline)
}

// System bundles a topology with its flows and offers analysis,
// simulation, admission control and model comparison.
type System struct {
	nw *network.Network
}

// NewSystem creates a system over the topology.
func NewSystem(topo *Topology) *System {
	return &System{nw: network.New(topo)}
}

// Network exposes the underlying network for advanced use.
func (s *System) Network() *network.Network { return s.nw }

// AddFlow registers a flow and returns its index.
func (s *System) AddFlow(fs *FlowSpec) (int, error) { return s.nw.AddFlow(fs) }

// MustAddFlow registers a flow and panics on error; intended for examples
// and tests with statically known-good inputs.
func (s *System) MustAddFlow(fs *FlowSpec) int {
	i, err := s.nw.AddFlow(fs)
	if err != nil {
		panic(err)
	}
	return i
}

// AssignPrioritiesDM assigns deadline-monotonic priorities to all flows.
func (s *System) AssignPrioritiesDM() { s.nw.AssignPrioritiesDM() }

// Analyze runs the holistic schedulability analysis of the paper.
func (s *System) Analyze(cfg AnalysisConfig) (*AnalysisResult, error) {
	an, err := core.NewAnalyzer(s.nw, cfg)
	if err != nil {
		return nil, err
	}
	return an.Analyze()
}

// AnalyzeParallel runs the holistic analysis with Jacobi-style parallel
// iterations (workers <= 0 selects GOMAXPROCS). It reaches the same
// fixpoint as Analyze and pays off on networks with many flows.
func (s *System) AnalyzeParallel(cfg AnalysisConfig, workers int) (*AnalysisResult, error) {
	an, err := core.NewAnalyzer(s.nw, cfg)
	if err != nil {
		return nil, err
	}
	return an.AnalyzeParallel(workers)
}

// Simulate runs the discrete-event simulator on the system.
func (s *System) Simulate(cfg SimConfig) (*SimResult, error) {
	sm, err := sim.New(s.nw, cfg)
	if err != nil {
		return nil, err
	}
	return sm.Run()
}

// CompareModels analyses the system under both the GMF model and its
// sporadic collapse.
func (s *System) CompareModels(cfg AnalysisConfig) (*ModelComparison, error) {
	return sporadic.Compare(s.nw, cfg)
}

// NewAdmissionController returns an admission controller over the
// system's network; flows already present are treated as admitted. The
// controller runs on a persistent Engine: the network is validated once,
// each request re-analyses only the flows sharing resources with the
// newcomer, and rejections roll back through O(1) undo-log snapshot
// tokens instead of recompute or deep copies. RequestBatch decides a
// whole batch with one converged delta worklist — identical decisions
// to one-by-one RequestAll, with violators evicted in request order via
// journaled rollback that spans the eviction departures. Set
// AnalysisConfig.Workers to run large delta worklists as parallel
// Jacobi rounds.
func (s *System) NewAdmissionController(cfg AnalysisConfig) (*admission.Controller, error) {
	return admission.NewController(s.nw, cfg)
}

// NewShardedAdmissionController returns a closure-sharded admission
// controller over the system's network; flows already present are
// treated as admitted and partitioned by interference closure. Flows
// whose pipelines (transitively) share no resource never exchange
// jitter, so each closure gets its own warm shard engine: requests
// route to their closure's shard, batches spanning several closures
// are decided concurrently, an arrival bridging two closures fuses
// their shards with a warm arena splice, and departures re-split
// shards whose flows no longer form one closure. Decisions and bounds
// are identical to NewAdmissionController's monolithic controller —
// pinned by differential tests — with speedups on topologies that
// actually shard (multi-pod fat trees, disjoint ring segments).
func (s *System) NewShardedAdmissionController(cfg AnalysisConfig) (*admission.ShardedController, error) {
	return admission.NewShardedController(s.nw, cfg)
}

// NewParallelAdmissionController returns the multi-core form of the
// closure-sharded controller: the same decomposition as
// NewShardedAdmissionController, executed by a worker-pool shard
// scheduler. Each shard's decisions run on a serial mailbox goroutine
// (strictly ordered within a closure), distinct closures decide
// concurrently across AnalysisConfig.Workers workers (zero selects
// GOMAXPROCS), and SubmitBatch pipelines batches so one contended
// closure's eviction bisection never stalls independent work.
// Decisions are byte-identical to the serial controllers. Call Flush
// at stream boundaries to surface asynchronous departure errors and
// re-split fused shards; call Close when done.
func (s *System) NewParallelAdmissionController(cfg AnalysisConfig) (*admission.ParallelController, error) {
	return admission.NewParallelController(s.nw, cfg)
}

// NewEngine returns a persistent, warm-startable analysis engine over the
// system's network. The engine keeps demand caches, the last converged
// jitter fixpoint (a flat arena indexed by dense resource ids) and the
// interference index across calls, so a stream of AddFlow/RemoveFlow +
// Analyze calls costs a fraction of repeated cold Analyze calls;
// snapshots are O(1) undo-log tokens that survive removals (departed
// blocks are tombstoned, not compacted, while a snapshot is armed, so a
// Restore can roll back across departures). Results are published
// copy-on-read: Engine.AnalyzeView returns an O(1) AnalysisView sharing
// the engine's live per-flow results (Engine.Analyze remains the
// detached-copy compatibility shim, Engine.Refresh converges without
// publishing). Set AnalysisConfig.Workers to parallelise large delta
// worklists. Mutate the flow set only through the engine (or call
// Engine.Invalidate after out-of-band changes).
func (s *System) NewEngine(cfg AnalysisConfig) (*Engine, error) {
	return core.NewEngine(s.nw, cfg)
}

// Breakdown is the result of a breakdown (critical-scaling) search.
type Breakdown = sensitivity.Breakdown

// BreakdownOptions tunes FindBreakdown.
type BreakdownOptions = sensitivity.Options

// FindBreakdown bisects for the largest payload scaling factor at which
// the system remains schedulable — the operator's headroom estimate.
func (s *System) FindBreakdown(opt BreakdownOptions) (*Breakdown, error) {
	return sensitivity.FindBreakdown(s.nw, opt)
}

// AssignPrioritiesOPA searches for a feasible priority assignment with
// Audsley's strategy and applies it; it returns whether one was found
// (original priorities are restored otherwise).
func (s *System) AssignPrioritiesOPA(cfg AnalysisConfig) (bool, error) {
	return prio.Assign(s.nw, cfg)
}

// ResourceLoad summarises the long-run demand on one resource.
type ResourceLoad = core.ResourceLoad

// UtilizationReport returns every resource's long-run utilisation, sorted
// descending — the bottleneck view.
func (s *System) UtilizationReport() ([]ResourceLoad, error) {
	return core.UtilizationReport(s.nw)
}
